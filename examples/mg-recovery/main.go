// mg-recovery reproduces the paper's motivating characterisation (§4,
// Figure 4) interactively: how MG's recomputability responds to persisting
// different data objects and persisting at different code regions.
//
//	go run ./examples/mg-recovery
package main

import (
	"fmt"
	"log"

	"easycrash"
)

const tests = 100

func main() {
	log.SetFlags(0)

	factory, err := easycrash.NewKernel("mg", easycrash.ProfileTest)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MG golden run: %d V-cycles, %d memory accesses, residual %.3g\n\n",
		tester.Golden().Iters, tester.Golden().MainAccesses, tester.Golden().Result[0])

	run := func(label string, policy *easycrash.Policy) float64 {
		rep := tester.RunCampaign(policy, easycrash.CampaignOpts{Tests: tests, Seed: 7})
		fmt.Printf("  %-28s recomputability %.2f  [S1 %2d  S2 %2d  S3 %2d  S4 %2d]\n",
			label, rep.Recomputability(), rep.Counts[0], rep.Counts[1], rep.Counts[2], rep.Counts[3])
		return rep.Recomputability()
	}

	// Figure 4(a): which object matters?
	fmt.Println("persisting one data object at the end of every iteration (Figure 4a):")
	none := run("nothing (baseline)", nil)
	u := run("u (the solution grid)", easycrash.IterationPolicy([]string{"u"}))
	run("r (recomputed every cycle)", easycrash.IterationPolicy([]string{"r"}))
	run("the iterator alone", easycrash.IterationPolicy([]string{"it"}))

	// Figure 4(b): where does persisting u matter?
	fmt.Println("\npersisting u at the end of a single code region (Figure 4b):")
	for r := 0; r < 4; r++ {
		label := [4]string{
			"R0 pre-smoothing", "R1 residual", "R2 coarse correction", "R3 commit",
		}[r]
		run(label, &easycrash.Policy{Objects: []string{"u"}, AtRegionEnds: []int{r}, Frequency: 1})
	}

	fmt.Printf("\nconclusion: persisting u moves MG from %.0f%% to %.0f%% — and only the\n", 100*none, 100*u)
	fmt.Println("commit region matters, which is exactly what EasyCrash discovers on its own.")
}
