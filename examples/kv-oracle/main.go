// kv-oracle runs the crash-consistency oracle over the persistent KV
// workload: a write-ahead-logged store whose recovery is audited, after
// every simulated power loss, against the journal of acknowledged writes.
// The paper's recomputability metrics cannot see this failure class — a
// store that silently drops an acknowledged write still "recomputes" — so
// the campaign engine classifies it separately as VIOL.
//
// Two variants of the same store run the same campaign: the correct one
// flushes each WAL record before the commit mark that covers it, the buggy
// one omits that flush (the classic missing-fence bug). The oracle must
// stay silent on the first and catch the second, including under media
// faults, where a poisoned WAL surfaces as a detected failure — never as a
// silently wrong value.
//
//	go run ./examples/kv-oracle
package main

import (
	"fmt"
	"log"

	"easycrash"

	// Register the persistent KV workloads ("pmemkv", "pmemkv-bug").
	_ "easycrash/internal/pmemkv"
)

const (
	tests = 200
	seed  = 7
)

func campaign(kernel string, faults bool) *easycrash.Report {
	factory, err := easycrash.NewKernel(kernel, easycrash.ProfileTest)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	opts := easycrash.CampaignOpts{Tests: tests, Seed: seed}
	if faults {
		opts.Faults = easycrash.FaultConfig{RBER: 2e-6, TornWrites: true, ECC: easycrash.SECDED()}
		opts.ScrubOnRestart = true
	}
	return tester.RunCampaign(nil, opts)
}

func printRow(label string, rep *easycrash.Report) {
	viol, listed := rep.ConsistencyViolations()
	fmt.Printf("  %-28s S1 %3d  S2 %3d  S3 %3d  S4 %3d  DUE %3d  VIOL %3d  (%d violation(s) itemised)\n",
		label,
		rep.Counts[easycrash.S1], rep.Counts[easycrash.S2],
		rep.Counts[easycrash.S3], rep.Counts[easycrash.S4],
		rep.Counts[easycrash.SDue], viol, listed)
}

func main() {
	log.SetFlags(0)

	fmt.Printf("persistent KV store under crash campaigns (%d trials each, seed %d):\n\n", tests, seed)

	correct := campaign("pmemkv", false)
	correctFaults := campaign("pmemkv", true)
	buggy := campaign("pmemkv-bug", false)

	printRow("pmemkv (correct)", correct)
	printRow("pmemkv + media faults", correctFaults)
	printRow("pmemkv-bug (missing flush)", buggy)

	if n := correct.Counts[easycrash.SViol] + correctFaults.Counts[easycrash.SViol]; n > 0 {
		log.Fatalf("oracle charged the correct store with %d violation(s)", n)
	}
	if buggy.Counts[easycrash.SViol] == 0 {
		log.Fatal("oracle failed to catch the buggy store")
	}

	fmt.Println("\nsample evidence from the buggy store's first violating trial:")
	for _, tr := range buggy.Tests {
		if tr.Outcome != easycrash.SViol {
			continue
		}
		fmt.Printf("  crash at access %d (iteration %d):\n", tr.CrashAccess, tr.CrashIter)
		for i, v := range tr.Violations {
			if i == 4 {
				fmt.Printf("    ... and %d more\n", len(tr.Violations)-i)
				break
			}
			fmt.Printf("    %s\n", v)
		}
		break
	}

	fmt.Println("\nThe correct store acknowledges a put only after its WAL record and")
	fmt.Println("commit mark are flushed and fenced: every crash recovers to exactly")
	fmt.Println("the acknowledged prefix. The buggy store's commit mark can reach NVM")
	fmt.Println("before the record it covers — recovery then reads a hole below the")
	fmt.Println("mark and silently truncates acknowledged history, which the oracle")
	fmt.Println("reports as lost or regressed keys (VIOL).")
}
