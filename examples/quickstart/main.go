// Quickstart: run the complete EasyCrash workflow on one kernel and print
// what the framework decided and what it bought.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"easycrash"
)

func main() {
	log.SetFlags(0)

	// Pick the multigrid kernel at the fast test problem size.
	factory, err := easycrash.NewKernel("mg", easycrash.ProfileTest)
	if err != nil {
		log.Fatal(err)
	}

	// Run the four-step workflow: baseline crash campaign, Spearman
	// selection of critical data objects, knapsack selection of critical
	// code regions under a 3% overhead budget, validation campaign.
	result, err := easycrash.Run(factory, easycrash.Config{
		Ts:    0.03,
		Tests: 120,
		Seed:  42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("kernel: %s\n", result.Kernel)
	fmt.Printf("baseline recomputability (no persistence): %.0f%%\n", 100*result.BaselineY)
	fmt.Printf("critical data objects selected:            %v\n", result.Critical)
	var regions []int
	for _, r := range result.Regions {
		if r.Chosen {
			regions = append(regions, r.Region)
		}
	}
	if len(regions) > 0 {
		fmt.Printf("critical code regions selected:            %v (every %d iteration(s))\n",
			regions, result.Frequency)
	} else if result.Policy != nil {
		fmt.Printf("persistence point selected:                iteration end (every %d iteration(s))\n",
			result.Frequency)
	}
	fmt.Printf("recomputability with EasyCrash:            %.0f%%\n", 100*result.AchievedY())

	// What does that recomputability buy a 100,000-node system with slow
	// checkpoints? Feed the measured R into the paper's §7 model.
	base, ec, gain, err := easycrash.SystemEfficiency(easycrash.SystemParams{
		MTBF:      12 * 3600,
		TChk:      3200,
		R:         result.AchievedY(),
		Ts:        0.015,
		DataBytes: float64(result.Golden.CandidateBytes),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system efficiency at MTBF 12h, T_chk 3200s: %.3f -> %.3f (%+.1f points)\n",
		base, ec, 100*gain)
}
