// characterize demonstrates the §8 extension: estimating a kernel's
// recomputability from one instrumented run — no crash tests — by fitting
// the access-pattern model on the other kernels and predicting the target.
//
//	go run ./examples/characterize mg
package main

import (
	"fmt"
	"log"
	"os"

	"easycrash"
)

func main() {
	log.SetFlags(0)
	target := "mg"
	if len(os.Args) > 1 {
		target = os.Args[1]
	}

	// Characterise every kernel (cheap: one golden run each).
	var trainFeatures []easycrash.Features
	var trainMeasured []float64
	var targetFeatures easycrash.Features
	for _, name := range easycrash.KernelNames() {
		factory, err := easycrash.NewKernel(name, easycrash.ProfileTest)
		if err != nil {
			log.Fatal(err)
		}
		feats, err := easycrash.Characterize(factory, easycrash.CacheConfig{}, 0)
		if err != nil {
			log.Fatal(err)
		}
		if name == target {
			targetFeatures = feats
			continue
		}
		// Training labels come from quick crash campaigns on the OTHER
		// kernels (the one-off cost the model amortises).
		tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
		if err != nil {
			log.Fatal(err)
		}
		rep := tester.RunCampaign(nil, easycrash.CampaignOpts{Tests: 50, Seed: 12})
		trainFeatures = append(trainFeatures, feats)
		trainMeasured = append(trainMeasured, rep.Recomputability())
		fmt.Printf("train %-9s measured R = %.2f  %s\n", name, rep.Recomputability(), feats)
	}

	model, err := easycrash.FitPredictor(trainFeatures, trainMeasured)
	if err != nil {
		log.Fatal(err)
	}
	predicted := model.Predict(targetFeatures)
	fmt.Printf("\ntarget %-9s %s\n", target, targetFeatures)
	fmt.Printf("predicted recomputability (no crash tests): %.2f\n", predicted)

	// Ground truth, for the demo only.
	factory, _ := easycrash.NewKernel(target, easycrash.ProfileTest)
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	rep := tester.RunCampaign(nil, easycrash.CampaignOpts{Tests: 50, Seed: 12})
	fmt.Printf("measured recomputability (crash campaign):  %.2f\n", rep.Recomputability())
}
