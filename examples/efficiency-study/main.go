// efficiency-study sweeps the paper's §7 deployment space: for a grid of
// failure rates and checkpoint overheads, where does EasyCrash pay off, by
// how much, and what recomputability threshold τ must an application clear?
//
//	go run ./examples/efficiency-study
package main

import (
	"fmt"
	"log"

	"easycrash"
)

func main() {
	log.SetFlags(0)

	mtbfs := []float64{24, 12, 6, 3} // hours
	tchks := []float64{32, 320, 3200}

	fmt.Println("efficiency gain of EasyCrash (percentage points) at R = 0.82, ts = 1.5%:")
	fmt.Printf("%10s", "MTBF \\ Tchk")
	for _, tchk := range tchks {
		fmt.Printf("%10.0fs", tchk)
	}
	fmt.Println()
	for _, mtbf := range mtbfs {
		fmt.Printf("%9.0fh ", mtbf)
		for _, tchk := range tchks {
			_, _, gain, err := easycrash.SystemEfficiency(easycrash.SystemParams{
				MTBF: mtbf * 3600, TChk: tchk, R: 0.82, Ts: 0.015, DataBytes: 500e6,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%+10.2f ", 100*gain)
		}
		fmt.Println()
	}

	fmt.Println("\nrecomputability threshold τ (EasyCrash must clear this to beat C/R):")
	fmt.Printf("%10s", "MTBF \\ Tchk")
	for _, tchk := range tchks {
		fmt.Printf("%10.0fs", tchk)
	}
	fmt.Println()
	for _, mtbf := range mtbfs {
		fmt.Printf("%9.0fh ", mtbf)
		for _, tchk := range tchks {
			tau, err := easycrash.Tau(easycrash.SystemParams{
				MTBF: mtbf * 3600, TChk: tchk, Ts: 0.015, DataBytes: 500e6,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.3f ", tau)
		}
		fmt.Println()
	}

	fmt.Println("\nreading: slow checkpoints and frequent failures make even modest")
	fmt.Println("recomputability worthwhile; fast checkpoints on reliable systems demand")
	fmt.Println("a high τ — the regime where the paper's EP and FT fall out.")
}
