// media-faults sweeps the raw bit-error rate of the simulated NVM and shows
// how MG's recomputability degrades once the paper's intact-NVM assumption
// is relaxed. Each crash additionally tears the in-flight cache block at the
// 8-byte atomic-write granularity. The sweep is run twice — with ECC off and
// with SECDED per block — separating detected-uncorrectable errors (DUE,
// the restart aborts like a machine check) from silent corruptions, which
// the kernel's own acceptance test either catches (S4) or misses.
//
//	go run ./examples/media-faults
package main

import (
	"fmt"
	"log"

	"easycrash"
)

const tests = 100

func main() {
	log.SetFlags(0)

	factory, err := easycrash.NewKernel("mg", easycrash.ProfileTest)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MG golden run: %d V-cycles, %d memory accesses\n",
		tester.Golden().Iters, tester.Golden().MainAccesses)

	// The production-style policy from the paper's workflow: persist the
	// solution and residual at the end of every iteration.
	policy := easycrash.IterationPolicy([]string{"u", "r"})

	rbers := []float64{0, 1e-6, 1e-5, 1e-4, 1e-3}
	configs := []struct {
		label string
		ecc   easycrash.ECCConfig
	}{
		{"ECC off ", easycrash.ECCConfig{}},
		{"SECDED  ", easycrash.SECDED()},
	}

	for _, c := range configs {
		fmt.Printf("\nRBER sweep with torn writes, %s (%d tests each):\n", c.label, tests)
		fmt.Println("  RBER     recomput.  S1   S2   S3   S4   DUE  silent caught/missed")
		for _, rber := range rbers {
			opts := easycrash.CampaignOpts{
				Tests: tests,
				Seed:  7,
				Faults: easycrash.FaultConfig{
					RBER:       rber,
					TornWrites: true,
					ECC:        c.ecc,
				},
			}
			rep := tester.RunCampaign(policy, opts)
			due, caught, missed := rep.MediaErrorCounts()
			fmt.Printf("  %-8.0e %.3f     %3d  %3d  %3d  %3d  %3d  %d/%d\n",
				rber, rep.Recomputability(),
				rep.Counts[easycrash.S1], rep.Counts[easycrash.S2],
				rep.Counts[easycrash.S3], rep.Counts[easycrash.S4],
				due, caught, missed)
		}
	}

	fmt.Println("\nWith ECC off every raw bit error lands silently; the kernel's")
	fmt.Println("verification catches most but not all. SECDED converts multi-bit")
	fmt.Println("blocks into DUEs, trading silent corruption for detected aborts —")
	fmt.Println("which the Step-4 scrub-and-fallback restart can then recover from.")
}
