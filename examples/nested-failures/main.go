// nested-failures sweeps the re-crash depth K of the nested-failure model
// and shows how recoverability decays when failures strike the recovery runs
// themselves. Each trial is a crash chain: the initial crash, then up to K
// further crashes at seed-derived points of the successive recovery
// attempts. R(k) is the survival curve — among trials whose chain reached at
// least k crashes, the fraction that ultimately recomputed — so R(1) is the
// classic success rate and deeper levels can only lose more volatile state.
//
// The sweep contrasts the iterator-only baseline with the EasyCrash-style
// production policy (persist MG's solution and residual every iteration):
// both curves decay with k, but the policy's smaller volatile window keeps
// it above the baseline at every depth.
//
//	go run ./examples/nested-failures [-tests 150] [-depth 3] [-seed 7]
package main

import (
	"flag"
	"fmt"
	"log"

	"easycrash"
)

func main() {
	log.SetFlags(0)
	var (
		tests = flag.Int("tests", 150, "trials per campaign")
		depth = flag.Int("depth", 3, "max additional crashes during recovery (K)")
		seed  = flag.Int64("seed", 7, "campaign seed")
	)
	flag.Parse()

	factory, err := easycrash.NewKernel("mg", easycrash.ProfileTest)
	if err != nil {
		log.Fatal(err)
	}
	tester, err := easycrash.NewTester(factory, easycrash.TesterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MG golden run: %d V-cycles, %d memory accesses\n",
		tester.Golden().Iters, tester.Golden().MainAccesses)

	policies := []struct {
		label  string
		policy *easycrash.Policy
	}{
		{"baseline (iterator only) ", nil},
		{"EasyCrash (persist u,r)  ", easycrash.IterationPolicy([]string{"u", "r"})},
	}

	fmt.Printf("\nR(k): recoverability when the chain reaches at least k crashes (%d trials, K=%d):\n", *tests, *depth)
	header := "  policy                     success"
	for k := 1; k <= *depth+1; k++ {
		header += fmt.Sprintf("  R(%d)  ", k)
	}
	fmt.Println(header + "retries")
	for _, p := range policies {
		rep := tester.RunCampaign(p.policy, easycrash.CampaignOpts{
			Tests: *tests, Seed: *seed, RecrashDepth: *depth,
		})
		row := fmt.Sprintf("  %s  %.3f ", p.label, rep.SuccessRate())
		rk := rep.RecrashRecoverability()
		for k := 0; k <= *depth; k++ {
			if k < len(rk) {
				row += fmt.Sprintf("  %.3f", rk[k])
			} else {
				row += "      -" // no chain reached this depth
			}
		}
		fmt.Printf("%s  %d\n", row, rep.RetriesConsumed())
	}

	fmt.Println("\nEvery crash of a chain re-draws the volatile cache state dice: a")
	fmt.Println("trial only recomputes if every one of its recovery attempts starts")
	fmt.Println("from restorable NVM state, so R(k) decays with k for any policy.")
	fmt.Println("Persisting the critical objects shrinks what each power loss can")
	fmt.Println("destroy, so the EasyCrash policy survives every depth at a higher")
	fmt.Println("rate than the baseline.")
}
